#!/usr/bin/env python
"""Perf gate: the measurement surface must stay fast.

Microbenchmarks the indexed :class:`repro.logs.store.LogStore` against
the naive reference (:class:`repro.logs.reference.NaiveLogStore`) on a
10^5-event store — the windowed, account-filtered query every analysis
leans on — plus the token-indexed ``Mailbox.search`` against a full
scan.  Asserts the indexed query lands under a generous absolute
ceiling (so CI catches a regression, not machine noise) and writes the
numbers to ``BENCH_logstore.json`` at the repo root so the perf
trajectory is tracked PR over PR.

Run directly (it is also exercised as a smoke target by the test
suite's tier-1 run via ``python benchmarks/perf_gate.py --quick``):

    PYTHONPATH=src python benchmarks/perf_gate.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro import obs
from repro.core.config import SimulationConfig
from repro.core.parallel import run_world
from repro.logs.events import Actor, LoginEvent, NotificationEvent
from repro.logs.reference import NaiveLogStore
from repro.logs.store import LogStore
from repro.util.clock import DAY
from repro.world.mailbox import Mailbox
from repro.world.messages import EmailMessage
from repro.net.email_addr import EmailAddress

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_logstore.json"

#: Generous absolute ceiling for one indexed windowed+filtered query.
#: The measured time is ~3 orders of magnitude below this on 2020s
#: hardware; the gate exists to catch accidental O(n) regressions.
QUERY_CEILING_SECONDS = 5e-3


def _mulberry(state: int):
    """Tiny deterministic PRNG (no random import needed for a bench)."""
    def step() -> float:
        nonlocal state
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        return (state >> 11) / float(1 << 53)
    return step


def build_event_stream(n_events: int, n_accounts: int):
    """A near-monotonic login stream like a simulation emits."""
    rand = _mulberry(7)
    events = []
    timestamp = 0
    for index in range(n_events):
        timestamp += int(rand() * 3)
        jitter = -1 if rand() < 0.02 and timestamp > 0 else 0  # rare backfill
        account = f"acct-{int(rand() * n_accounts):06d}"
        actor = Actor.MANUAL_HIJACKER if rand() < 0.05 else Actor.OWNER
        events.append(LoginEvent(
            timestamp=timestamp + jitter, account_id=account,
            password_correct=True, succeeded=True, actor=actor,
        ))
    return events


def bench_store_queries(events, n_queries: int):
    """(naive_seconds, indexed_seconds, checksum) for the hot query."""
    naive, indexed = NaiveLogStore(), LogStore()
    naive.extend(events)
    indexed.extend(events)
    horizon = events[-1].timestamp
    accounts = sorted({e.account_id for e in events[:2000]})

    def workload(store, *, use_index):
        checksum = 0
        for index in range(n_queries):
            since = (index * 37) % max(1, horizon - DAY)
            until = since + DAY
            account = accounts[index % len(accounts)]
            if use_index:
                hits = store.query(LoginEvent, since=since, until=until,
                                   account_id=account)
            else:
                hits = store.query(
                    LoginEvent, since=since, until=until,
                    where=lambda e: e.account_id == account)
            checksum += len(hits)
        return checksum

    start = time.perf_counter()
    naive_checksum = workload(naive, use_index=False)
    naive_seconds = time.perf_counter() - start

    indexed.query(LoginEvent)  # pay the one-time lazy sort outside the loop
    start = time.perf_counter()
    indexed_checksum = workload(indexed, use_index=True)
    indexed_seconds = time.perf_counter() - start

    if naive_checksum != indexed_checksum:
        raise AssertionError(
            f"result divergence: naive={naive_checksum} indexed={indexed_checksum}")
    return naive_seconds, indexed_seconds, indexed_checksum


def bench_mailbox_search(n_messages: int, n_searches: int):
    """(scan_seconds, indexed_seconds) for keyword mailbox search."""
    owner = EmailAddress("owner", "primarymail.com")
    mailbox = Mailbox(owner)
    rand = _mulberry(11)
    keyword_pool = ("bank", "statement", "invoice", "passport", "photos",
                    "meeting", "wire", "transfer", "receipt", "taxes")
    for index in range(n_messages):
        first = keyword_pool[int(rand() * len(keyword_pool))]
        second = keyword_pool[int(rand() * len(keyword_pool))]
        mailbox.deliver(EmailMessage(
            message_id=f"msg-{index:06d}",
            sender=EmailAddress(f"peer{index % 50}", "inboxly.net"),
            recipients=(owner,),
            subject=f"re: {first}",
            sent_at=index,
            keywords=(second,),
        ))
    queries = ["wire transfer", "bank statement", "passport", "receipt"]

    start = time.perf_counter()
    scan_total = 0
    for index in range(n_searches):
        query = queries[index % len(queries)]
        scan_total += sum(1 for m in mailbox.messages() if m.matches(query))
    scan_seconds = time.perf_counter() - start

    start = time.perf_counter()
    indexed_total = 0
    for index in range(n_searches):
        indexed_total += len(mailbox.search(queries[index % len(queries)]))
    indexed_seconds = time.perf_counter() - start

    if scan_total != indexed_total:
        raise AssertionError(
            f"search divergence: scan={scan_total} indexed={indexed_total}")
    return scan_seconds, indexed_seconds


def bench_world_smoke(n_queries: int):
    """Run a small fixed-seed world and time its real hot query.

    The :meth:`Simulation._was_notified` shape — a time window plus an
    account filter — is the first migrated call site; this times it
    against the world's actual log stream.  The run executes under a
    live :mod:`repro.obs` recorder, and its metrics snapshot rides along
    in the report so the bench trajectory carries per-layer numbers
    (phase spans, log-store index/query counters, mailbox-search
    candidate sizes) — observability is determinism-safe, so the world
    itself is unchanged by the recorder.
    """
    config = SimulationConfig(
        seed=7, n_users=1_500, n_external_edu=300, n_external_other=120,
        horizon_days=10, campaigns_per_week=12, campaign_target_count=300,
    )
    with obs.recording() as recorder:
        start = time.perf_counter()
        result = run_world(config)
        build_seconds = time.perf_counter() - start
        store = result.store
        accounts = store.accounts_seen()
        horizon = result.horizon_minutes

        start = time.perf_counter()
        checksum = 0
        for index in range(n_queries):
            account = accounts[index % len(accounts)]
            since = (index * 997) % horizon
            checksum += len(store.query(
                NotificationEvent, since=since, until=since + DAY,
                account_id=account))
            checksum += len(store.query(
                LoginEvent, since=since, until=since + DAY, account_id=account))
        query_seconds = time.perf_counter() - start
    return {
        "obs": obs.metrics_snapshot(recorder),
        "seed": config.seed,
        "n_users": config.n_users,
        "horizon_days": config.horizon_days,
        "n_events": len(store),
        "build_s": round(build_seconds, 4),
        "n_queries": 2 * n_queries,
        "query_total_s": round(query_seconds, 6),
        "query_per_call_s": round(query_seconds / (2 * n_queries), 9),
        "checksum": checksum,
    }


def run_gate(n_events: int, n_queries: int, output: pathlib.Path) -> dict:
    events = build_event_stream(n_events, n_accounts=500)
    naive_seconds, indexed_seconds, checksum = bench_store_queries(
        events, n_queries)
    scan_seconds, search_seconds = bench_mailbox_search(
        n_messages=2_000, n_searches=200)
    world = bench_world_smoke(n_queries)

    per_query = indexed_seconds / n_queries
    report = {
        "store": {
            "n_events": n_events,
            "n_queries": n_queries,
            "workload": "time window (1 day) + account filter",
            "naive_total_s": round(naive_seconds, 6),
            "indexed_total_s": round(indexed_seconds, 6),
            "indexed_per_query_s": round(per_query, 9),
            "speedup": round(naive_seconds / max(indexed_seconds, 1e-12), 1),
            "checksum": checksum,
        },
        "mailbox_search": {
            "n_messages": 2_000,
            "n_searches": 200,
            "scan_total_s": round(scan_seconds, 6),
            "indexed_total_s": round(search_seconds, 6),
            "speedup": round(scan_seconds / max(search_seconds, 1e-12), 1),
        },
        "world_smoke": world,
        "gate": {
            "per_query_ceiling_s": QUERY_CEILING_SECONDS,
            "passed": (per_query < QUERY_CEILING_SECONDS
                       and world["query_per_call_s"] < QUERY_CEILING_SECONDS),
        },
    }
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke sizing for CI (10k events)")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    if args.quick:
        args.events, args.queries = 10_000, 50

    report = run_gate(args.events, args.queries, args.output)
    store = report["store"]
    search = report["mailbox_search"]
    print(f"LogStore.query on {store['n_events']:,} events x "
          f"{store['n_queries']} windowed+account queries:")
    print(f"  naive   {store['naive_total_s']:.4f}s")
    print(f"  indexed {store['indexed_total_s']:.4f}s "
          f"({store['speedup']}x, {store['indexed_per_query_s'] * 1e6:.1f}us/query)")
    print(f"Mailbox.search on {search['n_messages']:,} messages x "
          f"{search['n_searches']} queries: {search['scan_total_s']:.4f}s -> "
          f"{search['indexed_total_s']:.4f}s ({search['speedup']}x)")
    world = report["world_smoke"]
    print(f"World smoke (seed {world['seed']}, {world['n_users']} users, "
          f"{world['n_events']} events): built in {world['build_s']}s, "
          f"{world['query_per_call_s'] * 1e6:.1f}us/windowed account query")
    print(f"wrote {args.output}")
    if not report["gate"]["passed"]:
        print(f"GATE FAILED: {store['indexed_per_query_s']}s/query over the "
              f"{QUERY_CEILING_SECONDS}s ceiling", file=sys.stderr)
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
