"""Table 3 — top hijacker search terms.

Paper: finance terms dominate by an order of magnitude ("wire transfer"
14.4%, "bank transfer" 11.9%, Spanish and Chinese terms present), with
thin account-credential and personal-content tails.
"""

from repro.analysis import table3
from benchmarks.conftest import save_artifact

PAPER = ("paper: wire transfer 14.4%, bank transfer 11.9%, transfer 6.2%, "
         "wire 5.2%, transferencia 4.7%, investment 4.6%, banco 3.4%, "
         "账单 3.0% | password 0.6%, amazon 0.4% | jpg 0.2%, mov 0.2%")


def test_table3_search_terms(benchmark, exploitation_result):
    table = benchmark(table3.compute, exploitation_result)
    finance_total = sum(share for _, share in table.shares["Finance"])
    assert finance_total > 0.6
    save_artifact("table3", table3.render(table) + "\n" + PAPER)
