"""Benchmark fixtures: one simulation per scenario, shared session-wide.

Each bench measures the *analysis* computation (the part a user reruns
while exploring data) and prints/saves the artifact with the paper's
numbers alongside ours.  Simulation construction is deliberately outside
the timed region — it is the workload generator, not the measurement —
so multi-world fixtures build their worlds through
:func:`repro.core.parallel.run_worlds`: construction wall-clock drops
with core count while the per-seed results (and therefore every timed
analysis) stay bit-identical to a serial run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import Simulation
from repro.core.parallel import run_worlds
from repro.core.scenarios import (
    attribution_study,
    contact_lift_study,
    decoy_study,
    exploitation_study,
    phishing_traffic_study,
    recovery_study,
    retention_study,
    taxonomy_study,
)
from repro.hijacker.groups import Era

OUTPUT_DIR = pathlib.Path(__file__).parent / "out"


def save_artifact(name: str, text: str) -> None:
    """Print the artifact and persist it under benchmarks/out/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


@pytest.fixture(scope="session")
def traffic_result():
    """Figures 3–6 and Table 2 workload."""
    return Simulation(phishing_traffic_study(seed=7)).run()


@pytest.fixture(scope="session")
def decoy_result():
    """Figure 7 workload (~200 decoys)."""
    return Simulation(decoy_study(seed=7)).run()


@pytest.fixture(scope="session")
def exploitation_result():
    """Sections 5.2–5.3, Figure 8, Tables 1/3, attribution workload."""
    return Simulation(exploitation_study(seed=7)).run()


@pytest.fixture(scope="session")
def recovery_result():
    """Figures 9–10 workload (hundreds of claims)."""
    return Simulation(recovery_study(seed=7)).run()


@pytest.fixture(scope="session")
def attribution_result():
    """Figures 11–12 workload (era 2012, all crews active)."""
    return Simulation(attribution_study(seed=11)).run()


@pytest.fixture(scope="session")
def contact_lift_worlds():
    """Dataset 9 workload: three independent large, low-intensity worlds
    (the per-world hijack counts are single digits; only the pooled
    ratio is stable)."""
    configs = [
        contact_lift_study(seed).with_overrides(
            horizon_days=35, n_users=18_000, campaigns_per_week=10)
        for seed in (7, 11, 23)
    ]
    return run_worlds(configs)


@pytest.fixture(scope="session")
def era_pair():
    """(Oct-2011-like, Nov-2012-like) results for Section 5.4."""
    overrides = dict(horizon_days=21, n_users=5_000, campaigns_per_week=18)
    early, late = run_worlds([
        retention_study(Era.Y2011, seed=7).with_overrides(**overrides),
        retention_study(Era.Y2012, seed=7).with_overrides(**overrides),
    ])
    return early, late


@pytest.fixture(scope="session")
def taxonomy_result():
    """Figure 1 workload: manual crews + automated botnet baseline."""
    return Simulation(taxonomy_study(seed=5)).run()
