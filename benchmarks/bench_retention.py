"""Section 5.4 — retention tactics and their 2011→2012 evolution.

Paper: mass deletion given a password change fell 46% → 1.6% after the
provider added content restoration; hijacker recovery-option changes
fell 60% → 21%; Nov 2012 rates: 15% forwarding filters, 26% Reply-To.
"""

from repro.analysis import retention
from benchmarks.conftest import save_artifact

PAPER = ("paper: mass delete | pw-change 46% -> 1.6%; recovery-option "
         "changes 60% -> 21%; 2012: filters 15%, Reply-To 26%")


def test_section54_era_evolution(benchmark, era_pair):
    early, late = era_pair
    evolution = benchmark(retention.evolution, early, late)
    assert (evolution.earlier.mass_delete_given_password_change
            > evolution.later.mass_delete_given_password_change)
    assert (evolution.earlier.recovery_change_rate
            > evolution.later.recovery_change_rate)
    save_artifact(
        "section54",
        retention.render_evolution(evolution) + "\n"
        + retention.render(evolution.later) + "\n" + PAPER,
    )
