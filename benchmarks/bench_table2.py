"""Table 2 — account types targeted by phishing.

Paper (per 100): emails Mail 35 / Bank 21 / App Store 16 / Social 14 /
Other 14; pages Mail 27 / Bank 25 / App Store 17 / Social 15 / Other 15.
Shape to hold: Mail first and Bank second in both columns.
"""

from repro.analysis import table2
from benchmarks.conftest import save_artifact

PAPER = """paper (emails): Mail 35, Bank 21, App Store 16, Social 14, Other 14
paper (pages):  Mail 27, Bank 25, App Store 17, Social 15, Other 15"""


def test_table2_phishing_targets(benchmark, traffic_result):
    table = benchmark(table2.compute, traffic_result)
    assert max(table.email_counts, key=table.email_counts.get) == "Mail"
    assert max(table.page_counts, key=table.page_counts.get) == "Mail"
    save_artifact("table2", table2.render(table) + "\n" + PAPER)
