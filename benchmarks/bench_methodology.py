"""Section 3 methodology numbers.

Paper: an average of 9 manual-hijacking incidents per million active
users per day (2012–2013), and SafeBrowsing detecting 16k–25k phishing
pages per week Internet-wide.  The incident rate needs realistic (low)
hijacking intensity over a large population, so this bench runs the
dedicated rate-calibration scenario.
"""

import pytest

from repro import Simulation
from repro.core.metrics import SummaryMetrics
from repro.core.scenarios import rate_calibration_study
from benchmarks.conftest import save_artifact

PAPER = ("paper: ~9 manual hijack incidents / M active users / day; "
         "SafeBrowsing flagged 16k-25k pages/week Internet-wide")


@pytest.fixture(scope="module")
def rate_result():
    return Simulation(rate_calibration_study(seed=7)).run()


def test_incident_rate_order_of_magnitude(benchmark, rate_result):
    metrics = benchmark(SummaryMetrics.from_result, rate_result)
    rate = metrics.incidents_per_million_actives_per_day
    # Same order of magnitude as the paper's 9/M/day.
    assert 1.0 <= rate <= 60.0
    weekly_detections = [
        len(rate_result.safebrowsing.detections_in_week(week))
        for week in range(rate_result.config.horizon_days // 7)
    ]
    save_artifact("methodology", "\n".join([
        "Section 3 methodology numbers",
        f"  manual hijack incidents / M actives / day: {rate:.1f}",
        f"  phishing pages detected per week: {weekly_detections}",
        "  (our simulated web is tiny; the per-user incident rate is the "
        "calibrated quantity)",
        PAPER,
    ]))
