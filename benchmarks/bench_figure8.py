"""Figure 8 — hijacker activity per IP (blending in).

Paper: an average of ~9.6 distinct accounts per hijacker IP,
consistently under 10 per day over the studied two weeks; ~75% password
success including trivial-variant retries.
"""

from repro.analysis import figure8
from benchmarks.conftest import save_artifact

PAPER = ("paper: mean ~9.6 accounts/IP, consistently <10/day; password "
         "success 75% incl. retries")


def test_figure8_blend_in(benchmark, exploitation_result):
    figure = benchmark(figure8.compute, exploitation_result)
    assert 8.0 <= figure.mean_accounts_per_ip <= 10.0
    assert figure.max_accounts_per_ip_day <= 10
    assert 0.68 <= figure.password_success_rate <= 0.84
    save_artifact("figure8", figure8.render(figure) + "\n" + PAPER)
