"""Figure 1 — the hijacking taxonomy trade-off.

Paper: automated hijacking = many accounts / shallow abuse; manual =
orders of magnitude fewer accounts / deep per-victim abuse.  The bench
measures both axes from a run containing manual crews *and* the botnet
baseline, and asserts each lands in its region.
"""

from repro.analysis import figure1
from repro.hijacker.taxonomy import AttackClass
from benchmarks.conftest import save_artifact

PAPER = ("paper: automated = large volume/shallow; manual = modest "
         "volume/deep; targeted = tiny volume/deepest (conceptual chart)")


def test_figure1_taxonomy(benchmark, taxonomy_result):
    points = benchmark(figure1.compute, taxonomy_result)
    by_class = {point.attack_class: point for point in points}
    assert set(by_class) == set(AttackClass)  # all three classes measured
    manual = by_class[AttackClass.MANUAL]
    automated = by_class[AttackClass.AUTOMATED]
    targeted = by_class[AttackClass.TARGETED]
    for point in points:
        assert point.classified_as is point.attack_class
    assert automated.accounts_per_day > 10 * manual.accounts_per_day
    assert manual.depth_score > 2 * automated.depth_score
    assert targeted.depth_score > manual.depth_score
    assert targeted.accounts_per_day < 10
    save_artifact("figure1", figure1.render(points) + "\n" + PAPER)
