"""Section 8.2 ablation — second-factor adoption.

Paper: "Using a second authentication factor … has proven the best
client-side defense against hijacking", with the caveat that
application-specific passwords for legacy clients can still be phished.
The ablation sweeps owner 2FA adoption and measures how the fraction of
stolen credentials that still turn into account access collapses.
"""

from repro import Simulation
from repro.core.scenarios import exploitation_study
from benchmarks.conftest import save_artifact

PAPER = ("paper: second factor = best client-side defense; residual leak "
         "via phishable app-specific passwords")


def _access_rate(adoption: float) -> float:
    config = exploitation_study(seed=7).with_overrides(
        horizon_days=14, n_users=4_000, campaigns_per_week=16,
        owner_two_factor_adoption=adoption)
    result = Simulation(config).run()
    relevant = [r for r in result.incidents if r.account_id is not None]
    if not relevant:
        return 0.0
    return sum(1 for r in relevant if r.outcome.gained_access) / len(relevant)


def test_ablation_second_factor_adoption(benchmark):
    def sweep():
        return {adoption: _access_rate(adoption)
                for adoption in (0.0, 0.4, 0.9)}

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert rates[0.9] < rates[0.0]
    lines = ["Ablation: owner second-factor adoption (Section 8.2)"]
    for adoption, rate in rates.items():
        lines.append(f"  adoption {adoption:.0%}: stolen credential still "
                     f"yields access {rate:.0%} of the time")
    lines.append(PAPER)
    save_artifact("ablation_second_factor", "\n".join(lines))
