"""Figure 12 — countries of hijacker-enrolled phone numbers.

Paper: Nigeria (35.7%) and Ivory Coast (33.8%) dominate — two distinct
groups — with South Africa ~10%; the Asian crews never used the
two-factor lockout tactic so CN/MY are absent.
"""

from repro.analysis import figure12
from benchmarks.conftest import save_artifact

PAPER = ("paper: NG 35.7%, CI 33.8%, ZA ~10%; CN/MY absent "
         "(300 phones, 2012)")


def test_figure12_phone_attribution(benchmark, attribution_result):
    figure = benchmark(figure12.compute, attribution_result)
    assert figure.share("NG") + figure.share("CI") + figure.share("ZA") > 0.7
    assert figure.share("CN") == 0.0
    save_artifact("figure12", figure12.render(figure) + "\n" + PAPER)


def test_group_inference(benchmark, attribution_result):
    """Section 7's organized-group inference: distinct (country,
    language) clusters, with the five main countries all represented."""
    from repro.attribution.groups import infer_groups
    from repro.core.datasets import DatasetCatalog

    cases = DatasetCatalog(attribution_result).d13_hijack_cases()
    clusters = benchmark(
        infer_groups, attribution_result.store, attribution_result.geoip,
        cases)
    countries = {country for (country, _), members in clusters.items()
                 if len(members) >= 5}
    assert {"CN", "MY", "CI", "NG", "ZA"} <= countries
    lines = [f"Section 7: inferred groups over {len(cases)} cases"]
    for (country, language), members in sorted(
            clusters.items(), key=lambda kv: -len(kv[1]))[:8]:
        lines.append(f"  {country or '??'} / {language}: "
                     f"{len(members)} cases")
    lines.append("paper: five main countries; NG and CI are distinct "
                 "groups (different languages, 2000 km apart)")
    save_artifact("section7_groups", "\n".join(lines))
