"""Figure 11 — countries of the IPs involved in hijacking.

Paper: China and Malaysia dominate the IP traffic; Ivory Coast, Nigeria,
South Africa (~10%), and Venezuela are visible.
"""

from repro.analysis import figure11
from benchmarks.conftest import save_artifact

PAPER = ("paper: CN & MY dominate; CI, NG, ZA (~10%), VE visible "
         "(3000 hijack cases, Jan 2014)")


def test_figure11_ip_attribution(benchmark, attribution_result):
    figure = benchmark(figure11.compute, attribution_result)
    assert figure.share("CN") + figure.share("MY") > 0.4
    assert figure.share("ZA") > 0.03
    save_artifact("figure11", figure11.render(figure) + "\n" + PAPER)
